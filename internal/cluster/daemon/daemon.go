// Package daemon is the impure shell around internal/cluster: the
// coordinator that owns the membership table and runs jobs, the agent
// that joins and heartbeats, and the HTTP job API (api.go). The state
// machine itself lives in internal/cluster (a dflint kernel package);
// everything with goroutines, clocks, and sockets lives here.
package daemon

import (
	"bytes"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"filaments"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/matmul"
	"filaments/internal/apps/quadrature"
	"filaments/internal/cluster"
	"filaments/internal/obs"
	"filaments/internal/rtnode"
	"filaments/internal/udptrans"
)

// Config describes a coordinator.
type Config struct {
	// Nodes is the compute cluster size the coordinator hosts (default 4).
	// Each node is a live UDP endpoint; jobs run across all of them.
	Nodes int
	// Policy sets the failure-detector thresholds (default
	// cluster.DefaultPolicy).
	Policy cluster.Policy
	// MaxConcurrent is how many jobs may run at once (default 2). Each
	// concurrent job takes a service-id lane over the shared endpoints.
	MaxConcurrent int
	// QueueDepth bounds the queued-but-not-running backlog (default 16);
	// submissions beyond it are rejected rather than buffered without
	// bound.
	QueueDepth int
	// TickEvery is the failure-detector cadence (default 250 ms).
	TickEvery time.Duration
	// Tuning collects the wall-clock wire-path knobs, cluster-wide.
	Tuning filaments.UDPTuning
}

func (c *Config) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.TickEvery == 0 {
		c.TickEvery = 250 * time.Millisecond
	}
}

// Coordinator hosts the cluster's membership table and schedules jobs
// onto a live UDPCluster. One coordinator per cluster; workers join via
// Agent. Create with NewCoordinator, serve its API with Handler (api.go),
// and Close on shutdown.
type Coordinator struct {
	cfg  Config
	cl   *filaments.UDPCluster
	reg  *obs.Registry
	self []string // the compute endpoints' addresses, members of their own cluster

	mu     sync.Mutex
	ms     *cluster.Membership
	jobs   map[string]*Job
	order  []string // job ids, submission order
	nextID int
	closed bool

	queue  chan *Job
	stop   chan struct{}
	runWG  sync.WaitGroup // job workers
	tickWG sync.WaitGroup // failure-detector ticker
}

// NewCoordinator opens the compute endpoints, registers the membership
// services on endpoint 0, seeds the membership with the coordinator's
// own compute nodes, and starts the scheduler and failure detector.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg.defaults()
	cl, err := filaments.NewUDPCluster(filaments.UDPConfig{Nodes: cfg.Nodes, Tuning: cfg.Tuning})
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	co := &Coordinator{
		cfg:   cfg,
		cl:    cl,
		reg:   reg,
		ms:    cluster.New(cfg.Policy, reg),
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.QueueDepth),
		stop:  make(chan struct{}),
	}
	now := time.Now().UnixNano()
	for _, a := range cl.Addrs() {
		addr := a.String()
		co.self = append(co.self, addr)
		co.ms.Join(addr, now)
	}
	// Join/Beat/Leave transitions are idempotent by design (a duplicate
	// join refreshes, a duplicate leave is a no-op), so the handlers are
	// registered Idempotent: re-execution on a retransmitted request
	// beats holding a reply cache entry per prospective member forever.
	ep := cl.Endpoint(0)
	ep.Register(cluster.SvcJoin, udptrans.Service{Idempotent: true, Handler: co.handleJoin})
	ep.Register(cluster.SvcBeat, udptrans.Service{Idempotent: true, Handler: co.handleBeat})
	ep.Register(cluster.SvcLeave, udptrans.Service{Idempotent: true, Handler: co.handleLeave})

	for i := 0; i < cfg.MaxConcurrent; i++ {
		co.runWG.Add(1)
		go func() {
			defer co.runWG.Done()
			for j := range co.queue {
				co.runJob(j)
			}
		}()
	}
	co.tickWG.Add(1)
	go co.tickLoop()
	return co, nil
}

// tickLoop drives the failure detector and keeps the coordinator's own
// compute nodes Alive (they are in-process: their heartbeat is the
// ticker itself running).
func (co *Coordinator) tickLoop() {
	defer co.tickWG.Done()
	t := time.NewTicker(co.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			now := time.Now().UnixNano()
			co.mu.Lock()
			for _, addr := range co.self {
				co.ms.Heartbeat(addr, now)
			}
			co.ms.Tick(now)
			co.mu.Unlock()
		}
	}
}

// Membership service handlers. These face the open network: malformed
// payloads are dropped (no reply — the sender retransmits and gives up
// on its own schedule), never panics.

func (co *Coordinator) handleJoin(from *net.UDPAddr, req []byte) ([]byte, bool) {
	v, ok := cluster.DecodeWire(req)
	if !ok {
		return nil, true
	}
	m, ok := v.(cluster.JoinMsg)
	if !ok || m.Addr == "" {
		return nil, true
	}
	now := time.Now().UnixNano()
	co.mu.Lock()
	co.ms.Join(m.Addr, now)
	ack := cluster.JoinAck{Gen: co.ms.Generation(), SuspectAfter: co.ms.Policy().SuspectAfter}
	co.mu.Unlock()
	return rtnode.MarshalPayload(ack), false
}

func (co *Coordinator) handleBeat(from *net.UDPAddr, req []byte) ([]byte, bool) {
	v, ok := cluster.DecodeWire(req)
	if !ok {
		return nil, true
	}
	m, ok := v.(cluster.BeatMsg)
	if !ok || m.Addr == "" {
		return nil, true
	}
	now := time.Now().UnixNano()
	co.mu.Lock()
	gen, known := co.ms.Heartbeat(m.Addr, now)
	co.mu.Unlock()
	return rtnode.MarshalPayload(cluster.BeatAck{Gen: gen, Known: known}), false
}

func (co *Coordinator) handleLeave(from *net.UDPAddr, req []byte) ([]byte, bool) {
	v, ok := cluster.DecodeWire(req)
	if !ok {
		return nil, true
	}
	m, ok := v.(cluster.LeaveMsg)
	if !ok || m.Addr == "" {
		return nil, true
	}
	now := time.Now().UnixNano()
	co.mu.Lock()
	gen := co.ms.Leave(m.Addr, now)
	co.mu.Unlock()
	return rtnode.MarshalPayload(cluster.LeaveAck{Gen: gen}), false
}

// Addr returns the coordinator's membership endpoint address (compute
// endpoint 0), the address agents join.
func (co *Coordinator) Addr() *net.UDPAddr { return co.cl.Endpoint(0).Addr() }

// View snapshots the membership.
func (co *Coordinator) View() cluster.View {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.ms.View()
}

// Generation returns the current membership generation.
func (co *Coordinator) Generation() uint64 {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.ms.Generation()
}

// Metrics aggregates the coordinator's counters: membership transitions,
// every endpoint's wire counters, and every active run's node counters.
func (co *Coordinator) Metrics() []filaments.Sample {
	return obs.Merge(obs.Aggregate(co.reg), co.cl.Metrics())
}

// Submit validates spec, queues a job, and returns its record. The job
// runs when a scheduler slot frees up; watch Job.Done or poll the API.
func (co *Coordinator) Submit(spec JobSpec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return nil, fmt.Errorf("daemon: coordinator is shut down")
	}
	co.nextID++
	j := newJob(fmt.Sprintf("job-%d", co.nextID), spec, time.Now())
	select {
	case co.queue <- j:
	default:
		return nil, fmt.Errorf("daemon: job queue full (%d queued)", cap(co.queue))
	}
	co.jobs[j.ID] = j
	co.order = append(co.order, j.ID)
	return j, nil
}

// Job returns the job with the given id.
func (co *Coordinator) Job(id string) (*Job, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	j, ok := co.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (co *Coordinator) Jobs() []*Job {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]*Job, len(co.order))
	for i, id := range co.order {
		out[i] = co.jobs[id]
	}
	return out
}

// runJob executes one job on a fresh kernel run and records the outcome.
func (co *Coordinator) runJob(j *Job) {
	co.mu.Lock()
	gen := co.ms.Generation()
	co.mu.Unlock()
	j.start(gen, time.Now())
	res, trace, err := co.execute(j)
	j.finish(res, trace, err, time.Now())
}

// execute runs the job's app on its own lane and verifies the result
// against the sequential reference. A panic anywhere in the app or the
// kernel stack fails the job, not the daemon.
func (co *Coordinator) execute(j *Job) (res *JobResult, trace []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, trace = nil, nil
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	spec := j.Spec
	proto, err := spec.protocol()
	if err != nil {
		return nil, nil, err
	}
	var tracer *filaments.Tracer
	if spec.Trace {
		tracer = filaments.NewTracer()
	}
	run, err := co.cl.StartRun(filaments.UDPRunConfig{
		Protocol:  proto,
		Stealing:  spec.Stealing || spec.App == "quadrature",
		WakeFront: spec.App == "quadrature",
		Tracer:    tracer,
	})
	if err != nil {
		return nil, nil, err
	}
	j.mu.Lock()
	j.lane = run.Lane()
	j.mu.Unlock()

	var (
		rep    *filaments.UDPReport
		ok     bool
		output string
	)
	switch spec.App {
	case "jacobi":
		// Resolve sizes here so the parallel run and the reference agree
		// on the problem even when the spec relies on defaults.
		n, iters := spec.N, spec.Iters
		if n == 0 {
			n = 256
		}
		if iters == 0 {
			iters = 360
		}
		r, grid, rerr := jacobi.DFOn(jacobi.Config{N: n, Iters: iters, Protocol: proto}, run)
		if rerr != nil {
			return nil, nil, rerr
		}
		rep = r
		ok = matrixEqual(grid, jacobi.Reference(n, iters))
		output = verdict(ok, fmt.Sprintf("jacobi n=%d iters=%d (%d cells)", n, iters, n*n))
	case "matmul":
		n := spec.N
		if n == 0 {
			n = 128
		}
		r, cm, rerr := matmul.DFOn(matmul.Config{N: n, Protocol: proto}, run)
		if rerr != nil {
			return nil, nil, rerr
		}
		rep = r
		ok = matrixEqual(cm, matmul.Reference(n))
		output = verdict(ok, fmt.Sprintf("matmul n=%d (%d cells)", n, n*n))
	case "quadrature":
		// N caps the recursion depth for quadrature (its only size knob).
		cfg := quadrature.Config{MaxDepth: spec.N}
		if cfg.MaxDepth == 0 {
			cfg.MaxDepth = 8
		}
		r, got, rerr := quadrature.DFOn(cfg, run)
		if rerr != nil {
			return nil, nil, rerr
		}
		rep = r
		cfg.Nodes = run.Nodes()
		want, _ := quadrature.Reference(cfg)
		// Stealing makes the summation order nondeterministic: compare
		// within rounding, not bitwise.
		ok = math.Abs(got-want) <= 1e-9*math.Abs(want)
		output = verdict(ok, fmt.Sprintf("quadrature depth<=%d area=%.12f (ref %.12f)", cfg.MaxDepth, got, want))
	default:
		return nil, nil, fmt.Errorf("unknown app %q", spec.App)
	}

	if tracer != nil {
		var buf bytes.Buffer
		if werr := tracer.WriteJSON(&buf); werr == nil {
			trace = buf.Bytes()
		}
	}
	res = &JobResult{
		OK:        ok,
		Output:    output,
		ElapsedMS: float64(rep.Elapsed) / float64(time.Millisecond),
		Metrics:   rep.Metrics,
	}
	return res, trace, nil
}

func verdict(ok bool, detail string) string {
	if ok {
		return "RESULT OK " + detail
	}
	return "RESULT MISMATCH " + detail
}

func matrixEqual(got, want [][]float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			return false
		}
		for k := range got[i] {
			if got[i][k] != want[i][k] {
				return false
			}
		}
	}
	return true
}

// Close shuts the coordinator down in order: stop accepting jobs, drain
// the queue (queued jobs still run — a submission accepted is a
// submission honored), stop the failure detector, then close the
// endpoints. Idempotent.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		// A concurrent closer may still be draining; this call reports
		// success once endpoints are down, which Close below guarantees
		// only for the first caller. Serializing closers is the caller's
		// job; idempotence here is about the same caller's defer stacking.
		return nil
	}
	co.closed = true
	co.mu.Unlock()
	close(co.queue)
	co.runWG.Wait()
	close(co.stop)
	co.tickWG.Wait()
	return co.cl.Close()
}
