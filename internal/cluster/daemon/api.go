package daemon

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"

	"filaments/internal/cluster"
)

// The coordinator's REST face. JSON in, JSON out, including errors:
// {"error": "..."} with a meaningful status code, never a bare text
// body, so clients can always json-decode what they get.

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

// memberView renders a cluster.Member with the state as a string.
type memberView struct {
	Addr        string `json:"addr"`
	State       string `json:"state"`
	Incarnation uint64 `json:"incarnation"`
	JoinedAt    int64  `json:"joined_at_ns"`
	LastBeat    int64  `json:"last_beat_ns"`
}

type clusterView struct {
	Generation uint64       `json:"generation"`
	Alive      int          `json:"alive"`
	Members    []memberView `json:"members"`
}

func renderView(v cluster.View) clusterView {
	out := clusterView{Generation: v.Generation, Alive: v.Alive(), Members: make([]memberView, len(v.Members))}
	for i, m := range v.Members {
		out.Members[i] = memberView{
			Addr:        m.Addr,
			State:       m.State.String(),
			Incarnation: m.Incarnation,
			JoinedAt:    m.JoinedAt,
			LastBeat:    m.LastBeat,
		}
	}
	return out
}

// Handler returns the coordinator's HTTP API:
//
//	POST /jobs            submit a JobSpec, 202 + job record
//	GET  /jobs            all jobs, submission order
//	GET  /jobs/{id}       one job; ?wait=5s blocks until done or timeout
//	GET  /jobs/{id}/trace the job's Chrome trace (submit with "trace": true)
//	GET  /cluster         membership view
//	GET  /metrics         live counters + membership generation
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", co.apiSubmit)
	mux.HandleFunc("GET /jobs", co.apiJobs)
	mux.HandleFunc("GET /jobs/{id}", co.apiJob)
	mux.HandleFunc("GET /jobs/{id}/trace", co.apiTrace)
	mux.HandleFunc("GET /cluster", co.apiCluster)
	mux.HandleFunc("GET /metrics", co.apiMetrics)
	return mux
}

func (co *Coordinator) apiSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	j, err := co.Submit(spec)
	if err != nil {
		status := http.StatusBadRequest
		// Capacity and shutdown are the server's condition, not the
		// client's mistake.
		if strings.Contains(err.Error(), "queue full") || strings.Contains(err.Error(), "shut down") {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

func (co *Coordinator) apiJobs(w http.ResponseWriter, r *http.Request) {
	jobs := co.Jobs()
	views := make([]jobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.view()
	}
	writeJSON(w, http.StatusOK, views)
}

func (co *Coordinator) apiJob(w http.ResponseWriter, r *http.Request) {
	j, ok := co.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
		d, err := time.ParseDuration(waitSpec)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait duration: "+err.Error())
			return
		}
		select {
		case <-j.Done():
		case <-time.After(d):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (co *Coordinator) apiTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := co.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	trace := j.Trace()
	if trace == nil {
		writeError(w, http.StatusNotFound, "no trace for this job (submit with \"trace\": true and wait for completion)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(trace) //nolint:errcheck // client went away; nothing to do
}

func (co *Coordinator) apiCluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, renderView(co.View()))
}

func (co *Coordinator) apiMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": co.Generation(),
		"metrics":    co.Metrics(),
	})
}
