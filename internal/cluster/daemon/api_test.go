package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func apiServer(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	co := startCoordinator(t, cfg)
	srv := httptest.NewServer(co.Handler())
	t.Cleanup(srv.Close)
	return co, srv
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding %s body: %v", resp.Request.URL, err)
	}
	return v
}

// TestJobAPIRoundTrip drives a job through the REST face end to end:
// submit, poll with wait, read the verified result, and list it.
func TestJobAPIRoundTrip(t *testing.T) {
	_, srv := apiServer(t, Config{Nodes: 2})

	resp, err := http.Post(srv.URL+"/jobs", "application/json",
		strings.NewReader(`{"app": "jacobi", "n": 32, "iters": 8}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	sub := decode[jobView](t, resp)
	if sub.ID == "" || sub.State == JobDone {
		t.Fatalf("submit returned %+v", sub)
	}

	resp, err = http.Get(fmt.Sprintf("%s/jobs/%s?wait=60s", srv.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	got := decode[jobView](t, resp)
	if got.State != JobDone {
		t.Fatalf("job state %q error %q", got.State, got.Error)
	}
	if got.Result == nil || !got.Result.OK {
		t.Fatalf("job result %+v", got.Result)
	}
	if !strings.HasPrefix(got.Result.Output, "RESULT OK") {
		t.Fatalf("output %q", got.Result.Output)
	}
	if len(got.Result.Metrics) == 0 {
		t.Fatal("no per-job metrics in the result")
	}

	resp, err = http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[[]jobView](t, resp)
	if len(list) != 1 || list[0].ID != sub.ID {
		t.Fatalf("job list %+v", list)
	}
}

// TestJobAPIRejections covers the client-error paths: malformed JSON,
// unknown fields, unknown apps, and missing jobs — each a JSON error
// body with the right status.
func TestJobAPIRejections(t *testing.T) {
	_, srv := apiServer(t, Config{Nodes: 1})

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for _, body := range []string{
		`{"app": "jacobi"`,         // malformed JSON
		`{"app": "sudoku"}`,        // unknown app
		`{"app": "jacobi", "x":1}`, // unknown field
		`{"n": 8}`,                 // missing app
	} {
		resp := post(body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		if e := decode[apiError](t, resp); e.Error == "" {
			t.Fatalf("body %q: no JSON error message", body)
		}
	}

	resp, err := http.Get(srv.URL + "/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", resp.StatusCode)
	}
	if e := decode[apiError](t, resp); e.Error == "" {
		t.Fatal("missing job: no JSON error message")
	}

	resp, err = http.Get(srv.URL + "/jobs/job-999/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing trace: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestClusterAndMetricsEndpoints checks the observability faces: the
// membership view with generation and states, and the counter dump.
func TestClusterAndMetricsEndpoints(t *testing.T) {
	co, srv := apiServer(t, Config{Nodes: 2})

	resp, err := http.Get(srv.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	cv := decode[clusterView](t, resp)
	if cv.Generation == 0 || cv.Alive != 2 || len(cv.Members) != 2 {
		t.Fatalf("cluster view %+v", cv)
	}
	for _, m := range cv.Members {
		if m.State != "alive" {
			t.Fatalf("member %+v not alive", m)
		}
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Generation uint64 `json:"generation"`
		Metrics    []struct {
			Name  string `json:"Name"`
			Value int64  `json:"Value"`
		} `json:"metrics"`
	}
	func() {
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
	}()
	if body.Generation != co.Generation() {
		t.Fatalf("metrics generation %d, coordinator says %d", body.Generation, co.Generation())
	}
	found := false
	for _, s := range body.Metrics {
		if s.Name == "cluster.generation" {
			found = true
		}
	}
	if !found {
		t.Fatal("membership counters missing from /metrics")
	}
}
