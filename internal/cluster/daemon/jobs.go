package daemon

import (
	"fmt"
	"sync"
	"time"

	"filaments"
	"filaments/internal/obs"
)

// JobState is a job's position in its lifecycle:
// queued → running → done | failed.
//
//dflint:states
//dflint:transitions JobQueued->JobRunning JobRunning->JobDone JobRunning->JobFailed
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobSpec is what a client submits: which app to run and its problem
// shape. Cluster size, codec, and event batching are daemon-wide and
// not per job.
type JobSpec struct {
	// App is the program to run: jacobi, matmul, or quadrature.
	App string `json:"app"`
	// N is the problem size (grid/matrix dimension); app default if 0.
	N int `json:"n,omitempty"`
	// Iters is the iteration count (jacobi); app default if 0.
	Iters int `json:"iters,omitempty"`
	// Protocol selects the DSM protocol: migratory, write-invalidate,
	// implicit-invalidate, lazy-release; app default if empty.
	Protocol string `json:"protocol,omitempty"`
	// Stealing enables fork/join load balancing (quadrature defaults on).
	Stealing bool `json:"stealing,omitempty"`
	// Trace records a Chrome trace for the job, served at
	// /jobs/{id}/trace.
	Trace bool `json:"trace,omitempty"`
}

// protocol resolves the spec's protocol string against the app's
// default (the same defaulting DFUDP applies).
func (s JobSpec) protocol() (filaments.Protocol, error) {
	switch s.Protocol {
	case "":
		switch s.App {
		case "quadrature":
			return filaments.Migratory, nil
		case "matmul":
			return filaments.WriteInvalidate, nil
		default:
			return filaments.ImplicitInvalidate, nil
		}
	case "migratory":
		return filaments.Migratory, nil
	case "write-invalidate":
		return filaments.WriteInvalidate, nil
	case "implicit-invalidate":
		return filaments.ImplicitInvalidate, nil
	case "lazy-release":
		return filaments.LazyRelease, nil
	default:
		return 0, fmt.Errorf("unknown protocol %q (migratory | write-invalidate | implicit-invalidate | lazy-release)", s.Protocol)
	}
}

// validate rejects specs the scheduler could not run.
func (s JobSpec) validate() error {
	switch s.App {
	case "jacobi", "matmul", "quadrature":
	case "":
		return fmt.Errorf("missing app (jacobi | matmul | quadrature)")
	default:
		return fmt.Errorf("unknown app %q (jacobi | matmul | quadrature)", s.App)
	}
	if _, err := s.protocol(); err != nil {
		return err
	}
	if s.N < 0 || s.Iters < 0 {
		return fmt.Errorf("n and iters must be >= 0")
	}
	return nil
}

// JobResult is the completed job's outcome.
type JobResult struct {
	// OK reports result verification: bitwise equality against the
	// sequential reference for jacobi/matmul, tolerance comparison for
	// quadrature.
	OK bool `json:"ok"`
	// Output is a one-line human-readable result summary.
	Output string `json:"output"`
	// ElapsedMS is the job's wall-clock run time in milliseconds.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Metrics is the run-scoped counter aggregation (node counters exact,
	// endpoint counters as the run's interval delta).
	Metrics []obs.Sample `json:"metrics"`
}

// Job is one submitted job's record. Mutable fields are guarded by mu;
// done closes when the job reaches a terminal state.
type Job struct {
	ID   string
	Spec JobSpec

	mu         sync.Mutex
	state      JobState
	generation uint64 // membership generation when scheduled
	lane       int    // service-id lane the job ran on
	submitted  time.Time
	started    time.Time
	finished   time.Time
	errMsg     string
	result     *JobResult
	trace      []byte // Chrome trace JSON, when Spec.Trace

	done chan struct{}
}

func newJob(id string, spec JobSpec, now time.Time) *Job {
	return &Job{ID: id, Spec: spec, state: JobQueued, submitted: now, done: make(chan struct{})}
}

// Done returns a channel closed when the job reaches done or failed.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's result, nil until done.
func (j *Job) Result() *JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// State returns the job's current state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the failure message, empty unless state is failed.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errMsg
}

// Trace returns the job's Chrome trace JSON (nil unless Spec.Trace and
// the job is done).
func (j *Job) Trace() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.trace
}

func (j *Job) start(gen uint64, now time.Time) {
	j.mu.Lock()
	j.state = JobRunning
	j.generation = gen
	j.started = now
	j.mu.Unlock()
}

func (j *Job) finish(res *JobResult, trace []byte, err error, now time.Time) {
	j.mu.Lock()
	j.finished = now
	j.result = res
	j.trace = trace
	if err != nil {
		j.state = JobFailed
		j.errMsg = err.Error()
	} else {
		j.state = JobDone
	}
	j.mu.Unlock()
	close(j.done)
}

// jobView is the API's JSON rendering of a job snapshot.
type jobView struct {
	ID         string     `json:"id"`
	App        string     `json:"app"`
	Spec       JobSpec    `json:"spec"`
	State      JobState   `json:"state"`
	Generation uint64     `json:"generation,omitempty"`
	Lane       int        `json:"lane"`
	Submitted  time.Time  `json:"submitted"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	Error      string     `json:"error,omitempty"`
	Result     *JobResult `json:"result,omitempty"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:         j.ID,
		App:        j.Spec.App,
		Spec:       j.Spec,
		State:      j.state,
		Generation: j.generation,
		Lane:       j.lane,
		Submitted:  j.submitted,
		Error:      j.errMsg,
		Result:     j.result,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
