// Package cluster is the lifecycle layer between the transport
// (udptrans/rtnode) and the applications: which nodes are part of the
// service, how healthy they are, and which membership generation a
// caller observed. It is deliberately split in two:
//
//   - This package is the pure state machine: explicit-clock, no
//     goroutines, no locks, no I/O. It is registered as a dflint kernel
//     package, so kerneltime/kernelspawn/maprange enforce that split —
//     the same discipline that keeps the DF kernel deterministic keeps
//     membership decisions replayable from a log of (event, now) pairs.
//   - cluster/daemon owns the impure shell: the UDP service handlers,
//     heartbeat timers, the job scheduler, and the HTTP API.
//
// Failure detection is heartbeat-based, as ROADMAP item 4 needs it:
// a member that misses heartbeats decays Alive → Suspect → Dead on
// Tick; Dead and Left members are remembered (tombstones) so a rejoin
// is distinguishable from a first join and bumps the member's
// incarnation number.
package cluster

import (
	"sort"

	"filaments/internal/obs"
)

// State is a member's health, as judged by the coordinator's failure
// detector.
//
//dflint:states
//dflint:transitions Alive->Suspect Suspect->Dead Suspect->Alive Dead->Alive Left->Alive
//dflint:transitions Alive->Left Suspect->Left Dead->Left
type State int32

const (
	// Alive: heartbeats arriving within Policy.SuspectAfter.
	Alive State = iota
	// Suspect: no heartbeat for SuspectAfter; schedulable work drains
	// away from the node but it is not yet condemned.
	Suspect
	// Dead: no heartbeat for DeadAfter; the failure detector has
	// condemned the node. A later heartbeat or join resurrects it under
	// a new incarnation.
	Dead
	// Left: the node deregistered voluntarily (clean shutdown).
	Left
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	case Left:
		return "left"
	default:
		return "invalid"
	}
}

// Policy sets the failure-detector thresholds, in the same nanosecond
// units as the now arguments. Heartbeat senders should beat several
// times per SuspectAfter so one lost datagram does not suspect a node.
type Policy struct {
	SuspectAfter int64 // Alive → Suspect after this long without a beat
	DeadAfter    int64 // → Dead after this long without a beat
}

// DefaultPolicy tolerates two lost 500 ms heartbeats before suspecting
// and ten before condemning.
func DefaultPolicy() Policy {
	return Policy{SuspectAfter: 1_500_000_000, DeadAfter: 5_000_000_000}
}

// Member is one node's membership record. Addr is the identity: the
// UDP endpoint address the node serves kernel traffic on.
type Member struct {
	Addr        string
	State       State
	Incarnation uint64 // bumped each time the member joins anew
	JoinedAt    int64  // now of the current incarnation's join
	LastBeat    int64  // now of the last heartbeat (or join)
}

// View is an immutable snapshot of the membership. Generation increases
// by one for every state transition of any member, so two Views are
// identical iff their generations match — scrapers detect restarts and
// flaps by watching it, and jobs record the generation they were
// scheduled under.
type View struct {
	Generation uint64
	Members    []Member // sorted by Addr
}

// Alive counts members in the Alive state.
func (v View) Alive() int {
	n := 0
	for _, m := range v.Members {
		if m.State == Alive {
			n++
		}
	}
	return n
}

// Find returns the member with the given address, if present.
func (v View) Find(addr string) (Member, bool) {
	i := sort.Search(len(v.Members), func(i int) bool { return v.Members[i].Addr >= addr })
	if i < len(v.Members) && v.Members[i].Addr == addr {
		return v.Members[i], true
	}
	return Member{}, false
}

// Membership is the coordinator's member table. It is a plain
// single-threaded structure: callers (cluster/daemon) serialize access
// and supply the clock. Members are kept in a slice sorted by Addr —
// cluster sizes are tens of nodes, and a sorted slice keeps every
// iteration deterministic by construction.
type Membership struct {
	policy  Policy
	gen     uint64
	members []*Member // sorted by Addr

	joins    *obs.Counter
	rejoins  *obs.Counter
	leaves   *obs.Counter
	beats    *obs.Counter
	suspects *obs.Counter
	deaths   *obs.Counter
	genC     *obs.Counter
	aliveC   *obs.Counter
}

// New builds an empty membership table under the given policy,
// surfacing transition counters in reg (reg must be non-nil; pass a
// fresh obs.NewRegistry() if the caller has no registry of its own).
func New(policy Policy, reg *obs.Registry) *Membership {
	if policy.SuspectAfter <= 0 || policy.DeadAfter < policy.SuspectAfter {
		policy = DefaultPolicy()
	}
	return &Membership{
		policy:   policy,
		joins:    reg.Counter("cluster.joins"),
		rejoins:  reg.Counter("cluster.rejoins"),
		leaves:   reg.Counter("cluster.leaves"),
		beats:    reg.Counter("cluster.beats"),
		suspects: reg.Counter("cluster.suspects"),
		deaths:   reg.Counter("cluster.deaths"),
		genC:     reg.Counter("cluster.generation"),
		aliveC:   reg.Counter("cluster.alive"),
	}
}

// Policy returns the failure-detector thresholds in force.
func (ms *Membership) Policy() Policy { return ms.policy }

// Generation returns the current membership generation.
func (ms *Membership) Generation() uint64 { return ms.gen }

func (ms *Membership) bump() {
	ms.gen++
	ms.genC.SetMax(int64(ms.gen))
	alive := int64(0)
	for _, m := range ms.members {
		if m.State == Alive {
			alive++
		}
	}
	// The counter is monotonic-friendly but Add takes deltas; store the
	// absolute value by resetting via delta.
	ms.aliveC.Add(alive - ms.aliveC.Load())
}

func (ms *Membership) find(addr string) *Member {
	i := sort.Search(len(ms.members), func(i int) bool { return ms.members[i].Addr >= addr })
	if i < len(ms.members) && ms.members[i].Addr == addr {
		return ms.members[i]
	}
	return nil
}

// Join admits (or re-admits) addr as Alive and returns its record. A
// join over a live membership is idempotent — a duplicate JoinMsg
// retransmission does not bump the generation — while a join over a
// Suspect/Dead/Left tombstone is a rejoin: the incarnation advances so
// observers can tell the new instance's heartbeats from a ghost's.
func (ms *Membership) Join(addr string, now int64) Member {
	m := ms.find(addr)
	switch {
	case m == nil:
		m = &Member{Addr: addr, State: Alive, Incarnation: 1, JoinedAt: now, LastBeat: now}
		ms.members = append(ms.members, m)
		sort.Slice(ms.members, func(i, j int) bool { return ms.members[i].Addr < ms.members[j].Addr })
		ms.joins.Inc()
		ms.bump()
	case m.State != Alive:
		m.State = Alive
		m.Incarnation++
		m.JoinedAt = now
		m.LastBeat = now
		ms.rejoins.Inc()
		ms.bump()
	default:
		m.LastBeat = now // duplicate join: refresh, no transition
	}
	return *m
}

// Heartbeat records a beat from addr. known=false means the coordinator
// has no live record (never joined, or condemned and garbage-collected):
// the ack tells the sender to rejoin. A beat that revives a Suspect
// member is a generation-bumping transition; a beat from a Dead or Left
// member is refused (rejoin required), so a ghost instance cannot
// silently resurrect an identity a new incarnation may have reclaimed.
func (ms *Membership) Heartbeat(addr string, now int64) (gen uint64, known bool) {
	m := ms.find(addr)
	if m == nil || m.State == Dead || m.State == Left {
		return ms.gen, false
	}
	ms.beats.Inc()
	m.LastBeat = now
	if m.State == Suspect {
		m.State = Alive
		ms.bump()
	}
	return ms.gen, true
}

// Leave deregisters addr voluntarily. Idempotent.
func (ms *Membership) Leave(addr string, now int64) (gen uint64) {
	m := ms.find(addr)
	if m != nil && m.State != Left {
		m.State = Left
		m.LastBeat = now
		ms.leaves.Inc()
		ms.bump()
	}
	return ms.gen
}

// Tick runs the failure detector at time now: members decay
// Alive → Suspect after Policy.SuspectAfter without a beat and
// Suspect → Dead after Policy.DeadAfter. Returns true if any state
// changed. The caller chooses the tick cadence; thresholds are measured
// from the last beat, not the last tick, so a slow ticker only delays
// detection, never misdetects.
func (ms *Membership) Tick(now int64) bool {
	changed := false
	for _, m := range ms.members {
		idle := now - m.LastBeat
		switch m.State {
		case Alive:
			if idle >= ms.policy.SuspectAfter {
				m.State = Suspect
				ms.suspects.Inc()
				changed = true
			}
		case Suspect:
			if idle >= ms.policy.DeadAfter {
				m.State = Dead
				ms.deaths.Inc()
				changed = true
			}
		case Dead, Left:
			// Terminal for the detector: only a rejoin resurrects them,
			// and that goes through Join, not the ticker.
		}
	}
	if changed {
		ms.bump()
	}
	return changed
}

// View snapshots the membership. The returned slice is a copy.
func (ms *Membership) View() View {
	v := View{Generation: ms.gen, Members: make([]Member, len(ms.members))}
	for i, m := range ms.members {
		v.Members[i] = *m
	}
	return v
}
