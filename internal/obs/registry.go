package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one race-safe cumulative metric. All operations are
// lock-free atomics, so kernel code may bump a counter from node context
// while a metrics endpoint or a test probe reads it from a foreign
// goroutine.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// SetMax raises the counter to n if n exceeds the current value — the
// update rule for high-water marks (in-flight requests, request sizes).
func (c *Counter) SetMax(n int64) {
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Sample is one named counter value in a snapshot.
type Sample struct {
	Name  string
	Value int64
}

// Registry is a set of named counters, one per node (or per transport
// endpoint). Registration is locked; the counters themselves are
// lock-free, so the registry's lock is never on a hot path.
type Registry struct {
	// The mutex guards only name→counter registration. Counter updates
	// never take it, and snapshots are read from outside node context
	// (metrics endpoints, probes), so binding-owned serialization cannot
	// be the discipline here.
	mu       sync.Mutex //dflint:allow kernelspawn registry is read concurrently from outside node context (metrics endpoints, probes); counters stay lock-free
	names    []string   // insertion order; iterated instead of the map
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the counter registered under name, creating it on
// first use. The returned pointer is stable: callers cache it once and
// update it lock-free afterwards.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.names = append(r.names, name)
	return c
}

// Snapshot returns every counter's current value, sorted by name. The
// values are individually atomic (the snapshot is not a consistent cut,
// which is fine for monotonic counters).
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	counters := make([]*Counter, len(names))
	for i, n := range names {
		counters[i] = r.counters[n]
	}
	r.mu.Unlock()
	out := make([]Sample, len(names))
	for i, n := range names {
		out[i] = Sample{Name: n, Value: counters[i].Load()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Aggregate sums the snapshots of several registries by counter name —
// the cluster-wide view over per-node registries. The result is sorted
// by name; a counter missing from some registries contributes zero.
func Aggregate(regs ...*Registry) []Sample {
	var order []string
	idx := make(map[string]int)
	var totals []int64
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, s := range r.Snapshot() {
			i, ok := idx[s.Name]
			if !ok {
				i = len(order)
				idx[s.Name] = i
				order = append(order, s.Name)
				totals = append(totals, 0)
			}
			totals[i] += s.Value
		}
	}
	out := make([]Sample, len(order))
	for i, n := range order {
		out[i] = Sample{Name: n, Value: totals[i]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Merge sums several sample sets by name — Aggregate over snapshots that
// have already been taken. The result is sorted by name.
func Merge(sets ...[]Sample) []Sample {
	var order []string
	idx := make(map[string]int)
	var totals []int64
	for _, set := range sets {
		for _, s := range set {
			i, ok := idx[s.Name]
			if !ok {
				i = len(order)
				idx[s.Name] = i
				order = append(order, s.Name)
				totals = append(totals, 0)
			}
			totals[i] += s.Value
		}
	}
	out := make([]Sample, len(order))
	for i, n := range order {
		out[i] = Sample{Name: n, Value: totals[i]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delta subtracts one snapshot from a later one of the same counters,
// matched by name — the interval view that scopes a long-lived
// endpoint's cumulative counters to a single run. Counters absent from
// before are taken as having started at zero; counters absent from
// after (none, in practice: registries never forget) are dropped. The
// result is sorted by name, zero-valued entries included so the counter
// set stays stable across intervals.
func Delta(after, before []Sample) []Sample {
	base := make(map[string]int64, len(before))
	for _, s := range before {
		base[s.Name] = s.Value
	}
	out := make([]Sample, len(after))
	for i, s := range after {
		out[i] = Sample{Name: s.Name, Value: s.Value - base[s.Name]}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
