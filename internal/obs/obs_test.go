package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterSetMax(t *testing.T) {
	var c Counter
	c.SetMax(5)
	c.SetMax(3)
	if got := c.Load(); got != 5 {
		t.Fatalf("SetMax: got %d, want 5", got)
	}
	c.SetMax(9)
	if got := c.Load(); got != 9 {
		t.Fatalf("SetMax: got %d, want 9", got)
	}
}

func TestRegistrySnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(3)
	r.Counter("alpha").Inc()
	r.Counter("mid").Add(2)
	if c := r.Counter("alpha"); c != r.Counter("alpha") {
		t.Fatal("Counter is not stable per name")
	}
	got := r.Snapshot()
	want := []Sample{{"alpha", 1}, {"mid", 2}, {"zeta", 3}}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestAggregate(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("x").Add(2)
	a.Counter("only_a").Inc()
	b.Counter("x").Add(5)
	b.Counter("only_b").Add(7)
	got := Aggregate(a, nil, b)
	want := []Sample{{"only_a", 1}, {"only_b", 7}, {"x", 7}}
	if len(got) != len(want) {
		t.Fatalf("aggregate has %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("aggregate[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestConcurrentCountersAndSnapshots is the package's own race check:
// many writers bump counters while a reader snapshots — run with -race.
func TestConcurrentCountersAndSnapshots(t *testing.T) {
	r := NewRegistry()
	//dflint:allow kernelspawn this test deliberately races foreign goroutines against the registry
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		//dflint:allow kernelspawn this test deliberately races foreign goroutines against the registry
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for i := 0; i < 1000; i++ {
				c.Inc()
				r.Counter("hwm").SetMax(int64(i))
			}
		}()
	}
	done := make(chan struct{})
	//dflint:allow kernelspawn this test deliberately races foreign goroutines against the registry
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = r.Snapshot()
			_ = Aggregate(r, r)
		}
	}()
	wg.Wait()
	<-done
	if got := r.Counter("hits").Load(); got != 4000 {
		t.Fatalf("hits = %d, want 4000", got)
	}
}

func TestTracerJSONShape(t *testing.T) {
	tr := NewTracer()
	tr.Emit(1, 1500, "net", "retransmit", Arg{"svc", 7}, Arg{"attempt", 2})
	tr.Span(0, 2_000_000, 500_000, "dsm", "fault", Arg{"block", 3})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Valid JSON with the Chrome trace-event envelope.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 process_name metadata records + 2 events.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d trace events, want 4:\n%s", len(doc.TraceEvents), buf.String())
	}
	inst := doc.TraceEvents[2]
	if inst["ph"] != "i" || inst["ts"] != 1.5 || inst["pid"] != 1.0 {
		t.Fatalf("instant event malformed: %v", inst)
	}
	span := doc.TraceEvents[3]
	if span["ph"] != "X" || span["ts"] != 2000.0 || span["dur"] != 500.0 {
		t.Fatalf("span event malformed: %v", span)
	}
}

// TestTracerDeterministicBytes re-emits the same event sequence and
// requires byte-identical serialization — the property the sim binding
// relies on for reproducible traces.
func TestTracerDeterministicBytes(t *testing.T) {
	emit := func() []byte {
		tr := NewTracer()
		for i := 0; i < 50; i++ {
			tr.Emit(i%3, int64(i)*1000, "dsm", "inval", Arg{"block", int64(i)})
			tr.Span(i%3, int64(i)*2000, 700, "sync", "barrier", Arg{"epoch", int64(i)})
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("identical event sequences serialized to different bytes")
	}
}

func TestOfFallback(t *testing.T) {
	o := Of(42) // not a Provider
	if o == nil || o.NodeID != -1 {
		t.Fatalf("Of fallback: %+v", o)
	}
	o.Counter("x").Inc() // must not panic
	o.Trace(0, "c", "n") // no tracer: no-op
}

type fakeProvider struct{ o *Obs }

func (f fakeProvider) Obs() *Obs { return f.o }

func TestOfProvider(t *testing.T) {
	o := New(3)
	if got := Of(fakeProvider{o}); got != o {
		t.Fatal("Of did not return the provider's Obs")
	}
	if got := Of(fakeProvider{nil}); got == nil || got.NodeID != -1 {
		t.Fatal("Of with nil Obs should fall back to an orphan")
	}
}
