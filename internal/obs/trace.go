package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Arg is one key/value pair attached to a trace event. Events carry an
// ordered slice rather than a map so serialization is deterministic.
type Arg struct {
	Key string
	Val int64
}

// Event is one recorded trace event: an instant (Dur < 0) or a complete
// span. TS and Dur are nanoseconds on the emitting binding's clock —
// virtual time under the simulation, wall time under the real-time
// binding. The tracer itself never reads a clock.
type Event struct {
	Node int
	TS   int64
	Dur  int64 // span length; negative means instant event
	Cat  string
	Name string
	Args []Arg
}

// Tracer is a cluster-wide trace sink. One tracer is shared by every
// node in a run; emission order is the recording order, which under the
// single-threaded simulation engine is deterministic (two identical sim
// runs serialize to identical bytes).
type Tracer struct {
	// Under the real-time binding events arrive from many goroutines
	// (node monitors, transport workers), so the sink must carry its own
	// lock; no single node context exists that could serialize it.
	mu     sync.Mutex //dflint:allow kernelspawn shared cross-node trace sink; events arrive from any goroutine under the real-time binding
	events []Event
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Emit records an instant event.
func (t *Tracer) Emit(node int, ts int64, cat, name string, args ...Arg) {
	t.mu.Lock()
	t.events = append(t.events, Event{Node: node, TS: ts, Dur: -1, Cat: cat, Name: name, Args: args})
	t.mu.Unlock()
}

// Span records a complete event covering [ts, ts+dur].
func (t *Tracer) Span(node int, ts, dur int64, cat, name string, args ...Arg) {
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.events = append(t.events, Event{Node: node, TS: ts, Dur: dur, Cat: cat, Name: name, Args: args})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in emission order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSON serializes the trace in Chrome trace-event format (the JSON
// object form, loadable in chrome://tracing and Perfetto). Each node
// appears as one process. Serialization is hand-rolled so the byte
// output is a pure function of the event sequence: timestamps are
// microseconds printed as <µs>.<ns remainder> with no float formatting
// involved, and args keep their emission order.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := t.Events()

	// Name each node's process once, in node order. Membership is
	// map-tested but iteration stays on slices (determinism).
	var nodes []int
	seen := make(map[int]bool)
	for _, e := range events {
		if !seen[e.Node] {
			seen[e.Node] = true
			nodes = append(nodes, e.Node)
		}
	}
	sort.Ints(nodes)

	var buf bytes.Buffer
	buf.WriteString("{\"traceEvents\":[")
	first := true
	for _, n := range nodes {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&buf, "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"node %d\"}}", n, n)
	}
	for _, e := range events {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		buf.WriteString("\n{")
		fmt.Fprintf(&buf, "\"name\":%q,\"cat\":%q,", e.Name, e.Cat)
		if e.Dur < 0 {
			fmt.Fprintf(&buf, "\"ph\":\"i\",\"s\":\"t\",\"ts\":%s,", usec(e.TS))
		} else {
			fmt.Fprintf(&buf, "\"ph\":\"X\",\"ts\":%s,\"dur\":%s,", usec(e.TS), usec(e.Dur))
		}
		fmt.Fprintf(&buf, "\"pid\":%d,\"tid\":0,\"args\":{", e.Node)
		for i, a := range e.Args {
			if i > 0 {
				buf.WriteByte(',')
			}
			fmt.Fprintf(&buf, "%q:%d", a.Key, a.Val)
		}
		buf.WriteString("}}")
	}
	buf.WriteString("\n]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// usec renders a nanosecond count as fractional microseconds (the trace
// format's unit) without going through floating point.
func usec(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", neg, ns/1000, ns%1000)
}
