// Package obs is the cluster observability layer: race-safe named
// counters with cluster-wide aggregation, and an event tracer exporting
// Chrome trace-event JSON.
//
// The package is deliberately dependency-free (standard library only) so
// the standalone UDP transport can use it without pulling in the kernel
// seam. It also never reads a clock: every timestamp is an int64
// nanosecond count supplied by the caller from its binding's
// kernel.Clock — virtual time under the simulation, which is what makes
// sim traces deterministic, and wall time under the real-time binding.
// Node identities are plain ints for the same reason.
//
// The package is kernel-layer code (dsm, filament, reduce, and msg call
// it from node context), so dflint's kernel rules apply to it; the two
// mutexes it owns are the deliberate, annotated exceptions.
package obs

import "sync/atomic"

// Obs is one node's handle on the observability layer: a per-node
// counter registry plus an optional shared tracer. Bindings create one
// per node; kernel packages reach it through Of.
type Obs struct {
	NodeID int
	Reg    *Registry
	tracer atomic.Pointer[Tracer]
}

// New returns an Obs for the given node id with an empty registry and
// no tracer attached.
func New(node int) *Obs {
	return &Obs{NodeID: node, Reg: NewRegistry()}
}

// Counter returns the named counter from this node's registry.
func (o *Obs) Counter(name string) *Counter { return o.Reg.Counter(name) }

// SetTracer attaches (or, with nil, detaches) a trace sink. Safe to call
// concurrently with emission.
func (o *Obs) SetTracer(t *Tracer) { o.tracer.Store(t) }

// Tracer returns the attached trace sink, or nil.
func (o *Obs) Tracer() *Tracer { return o.tracer.Load() }

// Enabled reports whether a tracer is attached; hot paths check it
// before assembling event arguments.
func (o *Obs) Enabled() bool { return o.tracer.Load() != nil }

// Trace emits an instant event if a tracer is attached; otherwise it is
// a no-op.
func (o *Obs) Trace(ts int64, cat, name string, args ...Arg) {
	if t := o.tracer.Load(); t != nil {
		t.Emit(o.NodeID, ts, cat, name, args...)
	}
}

// TraceSpan emits a complete [ts, ts+dur] span if a tracer is attached.
func (o *Obs) TraceSpan(ts, dur int64, cat, name string, args ...Arg) {
	if t := o.tracer.Load(); t != nil {
		t.Span(o.NodeID, ts, dur, cat, name, args...)
	}
}

// Provider is implemented by bindings whose nodes carry an Obs
// (threads.Node and rtnode.Node).
type Provider interface {
	Obs() *Obs
}

// Of returns v's Obs when v implements Provider, or a fresh orphan Obs
// otherwise. The fallback keeps test fakes working: counters still
// count, they are just not aggregated or traced anywhere.
func Of(v any) *Obs {
	if p, ok := v.(Provider); ok {
		if o := p.Obs(); o != nil {
			return o
		}
	}
	return New(-1)
}
