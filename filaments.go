// Package filaments is the public API of the Distributed Filaments (DF)
// reproduction: a software kernel for efficient fine-grain parallelism on a
// cluster of workstations (Freeh, Lowenthal, Andrews — OSDI '94).
//
// A Cluster is a deterministic simulation of the paper's testbed: nodes
// with one virtual CPU each, a shared 10 Mbps Ethernet, a paged distributed
// shared memory, the Packet reliable datagram protocol, tournament-barrier
// reductions, and the Filaments runtime (run-to-completion, iterative, and
// fork/join filaments). Real data moves through the real protocols —
// results are exact — while time is virtual and calibrated to the paper's
// hardware, so performance experiments reproduce the paper's shape.
//
// Quick start:
//
//	cfg := filaments.Config{Nodes: 4, Protocol: filaments.WriteInvalidate}
//	c := filaments.New(cfg)
//	grid := c.AllocMatrix(256, 256)           // shared, owned by node 0
//	report, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
//	    // SPMD: this function runs on every node's main server thread.
//	    pool := rt.NewPool("points")
//	    ...
//	    rt.RunPools(e)
//	    e.Barrier()
//	})
package filaments

import (
	"fmt"

	"filaments/internal/cost"
	"filaments/internal/dsm"
	"filaments/internal/filament"
	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/packet"
	"filaments/internal/reduce"
	"filaments/internal/sim"
	"filaments/internal/simnet"
	"filaments/internal/threads"
)

// Re-exported core types, so applications only import this package.
type (
	// Runtime is a node's Filaments runtime instance (see
	// internal/filament).
	Runtime = filament.Runtime
	// Exec is a filament execution context.
	Exec = filament.Exec
	// Args is a filament argument record.
	Args = filament.Args
	// Pool is a collection of RTC/iterative filaments.
	Pool = filament.Pool
	// Join accumulates fork/join results.
	Join = filament.Join
	// FJFunc is the body of a fork/join filament.
	FJFunc = filament.FJFunc
	// Addr is a shared-memory address.
	Addr = dsm.Addr
	// Matrix is a shared row-major float64 matrix.
	Matrix = dsm.Matrix
	// Protocol is a page consistency protocol.
	Protocol = dsm.Protocol
	// Duration is virtual time.
	Duration = sim.Duration
	// CostModel is the calibrated machine model.
	CostModel = cost.Model
	// Tracer collects cluster-wide trace events and exports them as
	// Chrome trace-event JSON (load in about:tracing or Perfetto).
	// Sim-binding traces are stamped in virtual time, so identical runs
	// produce byte-identical output.
	Tracer = obs.Tracer
	// Sample is one named metric value from a run.
	Sample = obs.Sample
	// Monitor observes DSM accesses, page transfers, and synchronization
	// events on every node (see internal/dsm). Install one with
	// Config.Monitor (or UDPConfig.Monitor); internal/check builds its
	// happens-before race detector on this seam.
	Monitor = dsm.Monitor
	// Range is a half-open [Lo, Hi) shared-address interval, used by the
	// access-annotation API (Exec.NoteRead / Exec.NoteWrite) and by fork/
	// join range describers.
	Range = dsm.Range
	// TaskKey identifies one fork/join task shipment for monitor pairing.
	TaskKey = dsm.TaskKey
)

// NewTracer returns an empty trace sink. Install it with Config.Tracer
// (or UDPConfig.Tracer) before Run, then WriteJSON after.
func NewTracer() *Tracer { return obs.NewTracer() }

// Page consistency protocols.
const (
	Migratory          = dsm.Migratory
	WriteInvalidate    = dsm.WriteInvalidate
	ImplicitInvalidate = dsm.ImplicitInvalidate
	LazyRelease        = dsm.LazyRelease
)

// Virtual-time units for Exec.Compute costs.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// PageSize is the DSM protection granularity (4 KB, as on the paper's
// SunOS testbed).
const PageSize = dsm.PageSize

// Reduction operators.
var (
	Sum = reduce.Sum
	Max = reduce.Max
	Min = reduce.Min
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the cluster size (>= 1).
	Nodes int
	// Protocol is the page consistency protocol (default Migratory, the
	// zero value).
	Protocol Protocol
	// SharedBytes is the size of the shared address space (default 64 MB).
	SharedBytes int64
	// Seed makes runs reproducible (default 1).
	Seed int64
	// Model overrides the calibrated cost model; nil uses cost.Default.
	Model *CostModel
	// LossRate injects network frame loss (0 on the paper's quiet LAN).
	LossRate float64
	// Stealing enables receiver-initiated fork/join load balancing.
	Stealing bool
	// MaxWorkers caps per-node fork/join server threads (default 16).
	MaxWorkers int
	// CentralBarrier replaces the tournament barrier with the centralized
	// baseline (ablation).
	CentralBarrier bool
	// DisseminationBarrier replaces the tournament barrier with the
	// butterfly allreduce (log2(p) fully parallel rounds; power-of-two
	// clusters only, otherwise the tournament is used).
	DisseminationBarrier bool
	// WakeFront schedules threads woken by a page arrival at the front of
	// the ready queue (the fork/join setting; iterative programs use the
	// back for fault frontloading).
	WakeFront bool
	// Tracer, when non-nil, records kernel events (page faults,
	// invalidations, steals, barrier rounds, retransmits) from every node
	// in virtual time.
	Tracer *Tracer
	// Monitor, when non-nil, observes every node's DSM accesses, page
	// transfers, and synchronization events (see internal/check for the
	// memory-model checker built on it). Callbacks run synchronously in
	// node context and must not block or re-enter the DSM.
	Monitor Monitor
	// MirageWindow overrides the cost model's Mirage anti-thrashing
	// window: 0 keeps the model's default, a negative value disables the
	// window, and a positive value replaces it.
	MirageWindow Duration
}

// NodeReport is one node's accounting after a run.
type NodeReport struct {
	CPU      threads.Account
	DSM      dsm.Stats
	Packet   packet.Stats
	Runtime  filament.Stats
	Switches int64
	Finished Duration // when this node's main thread completed
}

// Report summarizes a run.
type Report struct {
	// Elapsed is the virtual time from start until the last node's main
	// thread finished — the program's running time.
	Elapsed Duration
	// PerNode holds each node's counters.
	PerNode []NodeReport
	// Net holds network totals.
	Net simnet.Stats
	// Metrics is the cluster-wide metric aggregation: every node's
	// counters summed by name, sorted by name.
	Metrics []Sample
}

// Seconds returns the elapsed virtual time in seconds.
func (r *Report) Seconds() float64 { return r.Elapsed.Seconds() }

// Cluster is a simulated workstation cluster running Distributed
// Filaments. Create with New, set up shared data with the Alloc methods,
// then call Run once.
type Cluster struct {
	cfg   Config
	model cost.Model
	eng   *sim.Engine
	nw    *simnet.Network
	space *dsm.Space
	nodes []*threads.Node
	eps   []*packet.Endpoint
	dsms  []*dsm.DSM
	reds  []*reduce.Reducer
	rts   []*filament.Runtime
	ran   bool
}

// New builds a cluster from cfg.
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("filaments: Config.Nodes must be >= 1")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.SharedBytes == 0 {
		cfg.SharedBytes = 64 << 20
	}
	if cfg.MaxWorkers == 0 {
		cfg.MaxWorkers = 16
	}
	c := &Cluster{cfg: cfg}
	if cfg.Model != nil {
		c.model = *cfg.Model
	} else {
		c.model = cost.Default()
	}
	switch {
	case cfg.MirageWindow > 0:
		c.model.MirageWindow = cfg.MirageWindow
	case cfg.MirageWindow < 0:
		c.model.MirageWindow = 0
	}
	c.eng = sim.New(cfg.Seed)
	c.nw = simnet.New(c.eng, &c.model, cfg.Nodes)
	c.nw.LossRate = cfg.LossRate
	c.space = dsm.NewSpace(cfg.SharedBytes)
	if cfg.Monitor != nil {
		c.space.SetMonitor(cfg.Monitor)
	}
	for i := 0; i < cfg.Nodes; i++ {
		node := threads.NewNode(c.nw, simnet.NodeID(i))
		if cfg.Tracer != nil {
			node.Obs().SetTracer(cfg.Tracer)
		}
		ep := packet.New(node)
		d := dsm.New(node, ep, c.space, cfg.Protocol)
		d.WakeFront = cfg.WakeFront
		red := reduce.New(node, ep, d, cfg.Nodes)
		if cfg.CentralBarrier {
			red.Style = reduce.Central
		}
		if cfg.DisseminationBarrier {
			red.Style = reduce.Dissemination
		}
		rt := filament.New(node, ep, d, red, cfg.Nodes)
		rt.Stealing = cfg.Stealing
		rt.MaxWorkers = cfg.MaxWorkers
		c.nodes = append(c.nodes, node)
		c.eps = append(c.eps, ep)
		c.dsms = append(c.dsms, d)
		c.reds = append(c.reds, red)
		c.rts = append(c.rts, rt)
	}
	return c
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// Space returns the shared address space for allocation during setup.
func (c *Cluster) Space() *dsm.Space { return c.space }

// Network returns the simulated Ethernet (for fault injection in tests).
func (c *Cluster) Network() *simnet.Network { return c.nw }

// Engine returns the simulation engine (for scheduling test probes).
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Model returns the cluster's cost model.
func (c *Cluster) Model() *CostModel { return &c.model }

// Runtime returns node i's runtime (valid after New; useful for
// inspecting stats after Run).
func (c *Cluster) Runtime(i int) *Runtime { return c.rts[i] }

// Outstanding sums the requests still awaiting replies across every
// node's endpoint. After Run returns it must be zero: a nonzero value
// means a protocol layer leaked an in-flight request past its barrier.
func (c *Cluster) Outstanding() int {
	n := 0
	for _, rt := range c.rts {
		n += rt.Endpoint().Outstanding()
	}
	return n
}

// DSM returns node i's DSM instance (for inspecting stats).
func (c *Cluster) DSM(i int) *dsm.DSM { return c.dsms[i] }

// EnableTracing installs t as every node's trace sink. Equivalent to
// setting Config.Tracer before New.
func (c *Cluster) EnableTracing(t *Tracer) {
	for _, n := range c.nodes {
		n.Obs().SetTracer(t)
	}
}

// Metrics aggregates every node's counter registry: values summed by
// name, sorted by name. Safe to call at any time; counters are
// race-free.
func (c *Cluster) Metrics() []Sample {
	regs := make([]*obs.Registry, len(c.nodes))
	for i, n := range c.nodes {
		regs[i] = n.Obs().Reg
	}
	return obs.Aggregate(regs...)
}

// Alloc reserves shared memory owned initially by node 0.
func (c *Cluster) Alloc(size int64) Addr {
	return c.space.Alloc(size, dsm.AllocOpts{})
}

// AllocOwned reserves shared memory owned initially by the given node.
func (c *Cluster) AllocOwned(size int64, owner int) Addr {
	return c.space.Alloc(size, dsm.AllocOpts{Owner: simnet.NodeID(owner)})
}

// AllocMatrix allocates a rows×cols shared matrix owned by node 0.
func (c *Cluster) AllocMatrix(rows, cols int) Matrix {
	return dsm.AllocMatrix(c.space, rows, cols, dsm.AllocOpts{})
}

// AllocMatrixOwned allocates a shared matrix initially owned by one node.
func (c *Cluster) AllocMatrixOwned(rows, cols, owner int) Matrix {
	return dsm.AllocMatrix(c.space, rows, cols, dsm.AllocOpts{Owner: simnet.NodeID(owner)})
}

// AllocMatrixStriped allocates a matrix owned in one horizontal strip per
// node.
func (c *Cluster) AllocMatrixStriped(rows, cols int) Matrix {
	return dsm.AllocMatrixStriped(c.space, rows, cols, c.cfg.Nodes)
}

// PeekF64 reads a shared float64 from whichever node owns it. It performs
// no protocol action and is meant for result verification after Run.
func (c *Cluster) PeekF64(a Addr) float64 {
	for _, d := range c.dsms {
		if v, ok := d.Peek(a); ok {
			return v
		}
	}
	panic(fmt.Sprintf("filaments: no owner holds address %d", a))
}

// PeekMatrix copies a shared matrix out of the cluster for verification
// after Run.
func (c *Cluster) PeekMatrix(m Matrix) [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		row := make([]float64, m.Cols)
		for j := range row {
			row[j] = c.PeekF64(m.Addr(i, j))
		}
		out[i] = row
	}
	return out
}

// Program is the SPMD node program: it runs on every node's main server
// thread.
type Program func(rt *Runtime, e *Exec)

// Run executes program on every node and returns the run report. It may be
// called once per Cluster.
func (c *Cluster) Run(program Program) (*Report, error) {
	if c.ran {
		return nil, fmt.Errorf("filaments: cluster already ran")
	}
	c.ran = true
	rep := &Report{PerNode: make([]NodeReport, c.cfg.Nodes)}
	remaining := c.cfg.Nodes
	for _, n := range c.nodes {
		n.Start()
	}
	c.eng.Schedule(0, func() {
		for i, rt := range c.rts {
			i, rt := i, rt
			c.nodes[i].Spawn("main", func(t kernel.Thread) {
				e := rt.NewExec(t)
				program(rt, e)
				e.Flush()
				rep.PerNode[i].Finished = Duration(c.eng.Now())
				remaining--
				if remaining == 0 {
					rep.Elapsed = Duration(c.eng.Now())
					for _, n := range c.nodes {
						n.Stop()
					}
				}
			})
		}
	})
	if err := c.eng.Run(); err != nil {
		return nil, err
	}
	for i := range rep.PerNode {
		rep.PerNode[i].CPU = c.nodes[i].Account()
		rep.PerNode[i].DSM = c.dsms[i].Stats()
		rep.PerNode[i].Packet = c.eps[i].Stats()
		rep.PerNode[i].Runtime = c.rts[i].Stats()
		rep.PerNode[i].Switches = c.nodes[i].Switches()
	}
	rep.Net = c.nw.Stats()
	rep.Metrics = c.Metrics()
	return rep, nil
}
